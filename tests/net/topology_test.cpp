// Fat-tree topology: hop math and node-id validation, uncongested
// equivalence with the legacy fixed-latency model, shared-uplink
// congestion, deterministic ECMP routing, link-byte conservation, and
// congestion determinism under a fault-heavy soak.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "des/engine.hpp"
#include "des/rng.hpp"
#include "net/fabric.hpp"

namespace {

using des::Engine;
using net::Fabric;
using net::FabricConfig;
using net::Message;
using net::TopologyLevel;

// Round numbers: 10 GB/s links (1 ns/10 B), 1 us wire, 100 ns per hop,
// 4-node leaves, message-rate floor of 100 ns.
FabricConfig base_config() {
  FabricConfig cfg;
  cfg.link_bandwidth_Bps = 10e9;
  cfg.wire_latency = 1000;
  cfg.per_hop_latency = 100;
  cfg.nodes_per_switch = 4;
  cfg.nic_msg_rate = 10e6;
  return cfg;
}

Message msg(net::NodeId src, net::NodeId dst, std::uint64_t bytes) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.wire_bytes = bytes;
  return m;
}

// ---------------------------------------------------------------------------
// Node-id validation (send-time hard errors, not garbage group math)

TEST(TopologyValidation, HopsRejectsOutOfRangeIds) {
  Engine eng;
  Fabric fab(eng, 8, base_config());
  EXPECT_THROW(fab.hops(-1, 0), std::out_of_range);
  EXPECT_THROW(fab.hops(0, -3), std::out_of_range);
  EXPECT_THROW(fab.hops(8, 0), std::out_of_range);
  EXPECT_THROW(fab.hops(0, 100), std::out_of_range);
  EXPECT_THROW(fab.latency(-1, 2), std::out_of_range);
  EXPECT_THROW(fab.latency(2, 8), std::out_of_range);
}

TEST(TopologyValidation, RawSendRejectsInvalidDestination) {
  Engine eng;
  Fabric fab(eng, 4, base_config());
  EXPECT_THROW(fab.nic(0).raw_send(msg(0, -1, 64)), std::out_of_range);
  EXPECT_THROW(fab.nic(0).raw_send(msg(0, 4, 64)), std::out_of_range);
}

TEST(TopologyValidation, RawSendRejectsForeignSource) {
  Engine eng;
  Fabric fab(eng, 4, base_config());
  EXPECT_THROW(fab.nic(0).raw_send(msg(1, 2, 64)), std::invalid_argument);
}

TEST(TopologyValidation, PartialLastLeafIsExplicitlySupported) {
  // 10 nodes on 4-node leaves: leaves {0..3}, {4..7}, {8, 9} — the last
  // leaf is half-populated, never rounded into a phantom group.
  Engine eng;
  Fabric fab(eng, 10, base_config());
  EXPECT_EQ(fab.hops(8, 9), 1);   // both on the partial leaf
  EXPECT_EQ(fab.hops(7, 8), 3);   // full leaf <-> partial leaf
  EXPECT_EQ(fab.hops(0, 9), 3);
  EXPECT_EQ(fab.topology().num_switches(0), 3);
}

TEST(TopologyValidation, BadTierDescriptionsAreRejected) {
  Engine eng;
  FabricConfig cfg = base_config();
  cfg.topology.levels = {TopologyLevel{0, 1, 0, -1}, TopologyLevel{}};
  EXPECT_THROW(Fabric(eng, 8, cfg), std::invalid_argument);

  cfg = base_config();
  cfg.topology.levels = {TopologyLevel{4, 1, 0, -1}};  // no top tier
  EXPECT_THROW(Fabric(eng, 8, cfg), std::invalid_argument);

  cfg = base_config();
  cfg.topology.oversubscription = 0.5;
  EXPECT_THROW(Fabric(eng, 8, cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Hop math

TEST(TopologyHops, ThreeTierCountsAndSymmetry) {
  // 16 nodes: 4-node leaves, 2 leaves per pod, spanning top tier.
  FabricConfig cfg = base_config();
  cfg.topology.levels = {TopologyLevel{4, 2, 0, -1},
                         TopologyLevel{2, 2, 0, -1}, TopologyLevel{}};
  Engine eng;
  Fabric fab(eng, 16, cfg);
  EXPECT_EQ(fab.hops(0, 0), 0);
  EXPECT_EQ(fab.hops(0, 3), 1);   // same leaf
  EXPECT_EQ(fab.hops(0, 5), 3);   // same pod, different leaf
  EXPECT_EQ(fab.hops(0, 9), 5);   // across pods
  EXPECT_EQ(fab.hops(12, 15), 1);
  for (net::NodeId a = 0; a < 16; ++a) {
    for (net::NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(fab.hops(a, b), fab.hops(b, a)) << a << "," << b;
    }
  }
  // Latency follows the hop count under inherited per-hop latency.
  EXPECT_EQ(fab.latency(0, 9), 1000 + 5 * 100);
}

TEST(TopologyHops, OversubscriptionDerivesUplinkCount) {
  FabricConfig cfg = base_config();
  cfg.topology.explicit_links = true;
  cfg.topology.oversubscription = 4.0;
  cfg.topology.levels = {TopologyLevel{8, 0, 0, -1}, TopologyLevel{}};
  Engine eng;
  Fabric fab(eng, 32, cfg);
  EXPECT_EQ(fab.topology().uplinks(0), 2);  // ceil(8 / 4)
}

TEST(TopologyHops, ExpanseFatTreePreset) {
  FabricConfig cfg = net::expanse_fat_tree_config();
  Engine eng;
  Fabric fab(eng, 112, cfg);  // two full 56-node racks
  EXPECT_TRUE(fab.topology().explicit_links());
  EXPECT_EQ(fab.topology().num_switches(0), 2);
  EXPECT_EQ(fab.topology().uplinks(0), 7);
  EXPECT_EQ(fab.hops(0, 55), 1);
  EXPECT_EQ(fab.hops(0, 56), 3);
}

// ---------------------------------------------------------------------------
// Timing: explicit links vs the legacy fixed-latency model

// Runs one message schedule on a fabric and returns the delivery times.
template <typename SendFn>
std::vector<des::Time> run_schedule(const FabricConfig& cfg, int nodes,
                                    SendFn&& sends) {
  Engine eng;
  Fabric fab(eng, nodes, cfg);
  std::vector<des::Time> delivered;
  for (int n = 0; n < nodes; ++n) {
    fab.nic(n).set_deliver_handler(
        [&delivered, &eng](Message&&) { delivered.push_back(eng.now()); });
  }
  sends(eng, fab);
  eng.run();
  return delivered;
}

TEST(TopologyTiming, UncongestedFatTreeMatchesLegacyExactly) {
  // Spaced-out traffic never queues on a shared link, so the explicit
  // fat tree must reproduce the fixed-latency model to the nanosecond
  // — the property that keeps fig4/fig5 bit-identical by default.
  auto sends = [](Engine& eng, Fabric& fab) {
    des::Time t = 0;
    for (int i = 0; i < 12; ++i) {
      const net::NodeId src = i % 8;
      const net::NodeId dst = (i * 5 + 3) % 8;
      if (src == dst) continue;
      eng.schedule_at(t, [&fab, src, dst, i] {
        fab.nic(src).send(msg(src, dst, 200 + 400 * i));
      });
      t += 20000;  // 20 us apart: every queue drains between sends
    }
  };
  FabricConfig legacy = base_config();
  FabricConfig fat = base_config();
  fat.topology.explicit_links = true;
  EXPECT_EQ(run_schedule(legacy, 8, sends), run_schedule(fat, 8, sends));
}

TEST(TopologyTiming, SharedUplinkSerializesCongestedSenders) {
  // Two 10000 B messages (1 us serialization each) leave leaf 0 for
  // leaf 1 at t=0 through a single uplink plane.  The first rides the
  // legacy timing (egress 1000 + wire 1000 + 3 hops x 100 = 2300); the
  // second queues one serialization behind it on the shared uplink.
  FabricConfig cfg = base_config();
  cfg.topology.explicit_links = true;
  cfg.topology.levels = {TopologyLevel{4, 1, 0, -1}, TopologyLevel{}};
  Engine eng;
  Fabric fab(eng, 8, cfg);
  std::vector<std::pair<des::Time, net::NodeId>> delivered;
  for (int n = 4; n < 8; ++n) {
    fab.nic(n).set_deliver_handler([&delivered, &eng, n](Message&&) {
      delivered.emplace_back(eng.now(), n);
    });
  }
  fab.nic(0).send(msg(0, 4, 10000));
  fab.nic(1).send(msg(1, 5, 10000));
  eng.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (std::pair<des::Time, net::NodeId>{2300, 4}));
  EXPECT_EQ(delivered[1], (std::pair<des::Time, net::NodeId>{3300, 5}));
  // Both frames crossed the same up and down links.
  EXPECT_EQ(fab.topology().up_link(0, 0, 0).msgs, 2u);
  EXPECT_EQ(fab.topology().down_link(0, 1, 0).msgs, 2u);
  EXPECT_EQ(fab.topology().up_link(0, 0, 0).bytes, 20000u);
}

TEST(TopologyTiming, FasterUplinksAbsorbCongestion) {
  // Same contention pattern, but the uplink runs at 4x the node rate:
  // the second message re-serializes at 0.25 us instead of 1 us.
  FabricConfig cfg = base_config();
  cfg.topology.explicit_links = true;
  cfg.topology.levels = {TopologyLevel{4, 1, 40e9, -1}, TopologyLevel{}};
  Engine eng;
  Fabric fab(eng, 8, cfg);
  std::vector<des::Time> delivered;
  for (int n = 4; n < 8; ++n) {
    fab.nic(n).set_deliver_handler(
        [&delivered, &eng](Message&&) { delivered.push_back(eng.now()); });
  }
  fab.nic(0).send(msg(0, 4, 10000));
  fab.nic(1).send(msg(1, 5, 10000));
  eng.run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], 2300);
  // Only the uplink queues (0.25 us); the downlink drained in time.
  EXPECT_EQ(delivered[1], 2300 + 250);
}

// ---------------------------------------------------------------------------
// Routing determinism and conservation

TEST(TopologyRouting, PlaneSelectionIsDeterministicPerPair) {
  FabricConfig cfg = base_config();
  cfg.topology.explicit_links = true;
  cfg.topology.levels = {TopologyLevel{4, 4, 0, -1}, TopologyLevel{}};
  Engine eng1, eng2;
  Fabric fab1(eng1, 16, cfg);
  Fabric fab2(eng2, 16, cfg);
  for (net::NodeId s = 0; s < 16; ++s) {
    for (net::NodeId d = 0; d < 16; ++d) {
      const int p = fab1.topology().plane(s, d, 0);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 4);
      // Same pair, same plane — across calls and across instances.
      EXPECT_EQ(p, fab1.topology().plane(s, d, 0));
      EXPECT_EQ(p, fab2.topology().plane(s, d, 0));
    }
  }
}

TEST(TopologyRouting, SaltReshufflesPlanes) {
  FabricConfig a = base_config();
  a.topology.explicit_links = true;
  a.topology.levels = {TopologyLevel{4, 8, 0, -1}, TopologyLevel{}};
  FabricConfig b = a;
  b.topology.route_salt = 0xD1FF;
  Engine eng1, eng2;
  Fabric fab1(eng1, 64, a);
  Fabric fab2(eng2, 64, b);
  int differing = 0;
  for (net::NodeId s = 0; s < 64; ++s) {
    for (net::NodeId d = 0; d < 64; ++d) {
      if (fab1.topology().plane(s, d, 0) != fab2.topology().plane(s, d, 0)) {
        ++differing;
      }
    }
  }
  EXPECT_GT(differing, 0);  // a different salt routes differently
}

TEST(TopologyRouting, LinkByteConservation) {
  // Every cross-leaf byte crosses exactly one up link and one down
  // link; leaf-local bytes cross none.
  FabricConfig cfg = base_config();
  cfg.topology.explicit_links = true;
  cfg.topology.levels = {TopologyLevel{4, 2, 0, -1}, TopologyLevel{}};
  Engine eng;
  Fabric fab(eng, 12, cfg);
  for (int n = 0; n < 12; ++n) {
    fab.nic(n).set_deliver_handler([](Message&&) {});
  }
  std::uint64_t cross_bytes = 0, cross_msgs = 0;
  des::Rng rng(7);
  des::Time t = 0;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<net::NodeId>(rng() % 12);
    const auto dst = static_cast<net::NodeId>(rng() % 12);
    if (src == dst) continue;
    const std::uint64_t bytes = 64 + rng() % 8000;
    if (src / 4 != dst / 4) {
      cross_bytes += bytes;
      ++cross_msgs;
    }
    eng.schedule_at(t, [&fab, src, dst, bytes] {
      fab.nic(src).send(msg(src, dst, bytes));
    });
    t += static_cast<des::Duration>(rng() % 2000);
  }
  eng.run();
  const net::Topology& topo = fab.topology();
  EXPECT_EQ(topo.boundary_bytes_up(0), cross_bytes);
  EXPECT_EQ(topo.boundary_bytes_down(0), cross_bytes);
  EXPECT_EQ(topo.boundary_msgs_up(0), cross_msgs);
}

TEST(TopologyRouting, CongestionIsDeterministicUnderFaultSoak) {
  // Explicit links + every probabilistic fault on: two identical runs
  // must produce identical delivery sequences and link counters.
  auto run = [] {
    FabricConfig cfg = base_config();
    cfg.topology.explicit_links = true;
    cfg.topology.levels = {TopologyLevel{4, 2, 0, -1}, TopologyLevel{}};
    cfg.faults.drop_prob = 0.05;
    cfg.faults.dup_prob = 0.05;
    cfg.faults.corrupt_prob = 0.05;
    cfg.faults.spike_prob = 0.1;
    cfg.faults.spike_max = 3000;
    cfg.faults.jitter_max = 500;
    Engine eng;
    Fabric fab(eng, 16, cfg);
    std::vector<std::tuple<des::Time, net::NodeId>> log;
    for (int n = 0; n < 16; ++n) {
      fab.nic(n).set_deliver_handler([&log, &eng, n](Message&&) {
        log.emplace_back(eng.now(), n);
      });
    }
    des::Rng rng(99);
    des::Time t = 0;
    for (int i = 0; i < 600; ++i) {
      const auto src = static_cast<net::NodeId>(rng() % 16);
      const auto dst = static_cast<net::NodeId>(rng() % 16);
      if (src == dst) continue;
      const std::uint64_t bytes = 64 + rng() % 4000;
      eng.schedule_at(t, [&fab, src, dst, bytes] {
        fab.nic(src).send(msg(src, dst, bytes));
      });
      t += static_cast<des::Duration>(rng() % 700);
    }
    eng.run();
    return std::make_tuple(log, fab.topology().boundary_bytes_up(0),
                           fab.total_messages(), fab.fault_stats().drops);
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
