// Deterministic fault injection in the fabric: config validation, byte
// conservation, per-link FIFO under duplication/drops/jitter, seeded
// reproducibility, corruption discipline, brownouts, and NIC stalls.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "des/engine.hpp"
#include "net/fabric.hpp"

namespace {

using des::Engine;
using net::Fabric;
using net::FabricConfig;
using net::Message;

// Round numbers: 10 GB/s links, 1 us wire latency, no hop cost, 10M msg/s.
FabricConfig simple_config() {
  FabricConfig cfg;
  cfg.link_bandwidth_Bps = 10e9;
  cfg.wire_latency = 1000;
  cfg.per_hop_latency = 0;
  cfg.nodes_per_switch = 1024;
  cfg.nic_msg_rate = 10e6;
  return cfg;
}

Message msg(net::NodeId src, net::NodeId dst, std::uint64_t bytes,
            std::uint64_t seq = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.wire_bytes = bytes;
  m.hdr.seq = seq;
  return m;
}

// ---------------------------------------------------------------------------
// Config validation

TEST(FabricValidate, AcceptsDefaults) {
  EXPECT_NO_THROW(net::validate(FabricConfig{}));
}

TEST(FabricValidate, RejectsNanBandwidth) {
  FabricConfig cfg = simple_config();
  cfg.link_bandwidth_Bps = std::nan("");
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
}

TEST(FabricValidate, RejectsZeroBandwidth) {
  FabricConfig cfg = simple_config();
  cfg.loopback_bandwidth_Bps = 0;
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
}

TEST(FabricValidate, RejectsNegativeLatency) {
  FabricConfig cfg = simple_config();
  cfg.wire_latency = -1;
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
}

TEST(FabricValidate, RejectsZeroNodesPerSwitch) {
  FabricConfig cfg = simple_config();
  cfg.nodes_per_switch = 0;
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
}

TEST(FabricValidate, RejectsOutOfRangeProbability) {
  FabricConfig cfg = simple_config();
  cfg.faults.drop_prob = 1.5;
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
  cfg.faults.drop_prob = -0.1;
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
}

TEST(FabricValidate, RejectsNegativeFaultWindow) {
  FabricConfig cfg = simple_config();
  cfg.faults.spike_max = -5;
  EXPECT_THROW(net::validate(cfg), std::invalid_argument);
}

TEST(FabricValidate, ErrorNamesTheField) {
  FabricConfig cfg = simple_config();
  cfg.faults.corrupt_prob = 2.0;
  try {
    net::validate(cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt_prob"), std::string::npos);
  }
}

TEST(FabricValidate, ConstructorRejectsBadConfigAndNodeCount) {
  Engine eng;
  FabricConfig bad = simple_config();
  bad.nic_msg_rate = -1;
  EXPECT_THROW(Fabric(eng, 2, bad), std::invalid_argument);
  EXPECT_THROW(Fabric(eng, 0, simple_config()), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault mechanics

TEST(FaultInjection, OffByDefaultAndStatsZero) {
  Engine eng;
  Fabric fab(eng, 2, simple_config());
  EXPECT_FALSE(fab.config().faults.any());
  int delivered = 0;
  fab.nic(1).set_deliver_handler([&](Message&&) { ++delivered; });
  for (int i = 0; i < 50; ++i) fab.nic(0).send(msg(0, 1, 1000));
  eng.run();
  EXPECT_EQ(delivered, 50);
  EXPECT_EQ(fab.fault_stats().drops, 0u);
  EXPECT_EQ(fab.fault_stats().dups, 0u);
  EXPECT_EQ(fab.fault_stats().corruptions, 0u);
}

TEST(FaultInjection, BytesConservedUnderDropAndDup) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.drop_prob = 0.2;
  cfg.faults.dup_prob = 0.2;
  cfg.faults.jitter_max = 500;
  Fabric fab(eng, 4, cfg);
  for (int n = 0; n < 4; ++n) {
    fab.nic(n).set_deliver_handler([](Message&&) {});
  }
  for (int i = 0; i < 200; ++i) {
    const int src = i % 4;
    const int dst = (i + 1 + i / 4) % 4;
    if (src == dst) continue;
    fab.nic(src).send(msg(src, dst, 64 + 97 * (i % 11)));
  }
  eng.run();
  const net::FaultStats& fs = fab.fault_stats();
  EXPECT_GT(fs.drops, 0u);
  EXPECT_GT(fs.dups, 0u);
  std::uint64_t received = 0;
  for (int n = 0; n < 4; ++n) received += fab.nic(n).stats().bytes_received;
  // Injected duplicates occupy the wire like any frame, so they are part
  // of the fabric totals: every counted byte is either delivered or
  // accounted as dropped.  (dup_bytes still reports the injected volume.)
  EXPECT_EQ(received, fab.total_bytes() - fs.dropped_bytes);
  EXPECT_GT(fs.dup_bytes, 0u);
  EXPECT_LE(fs.dup_bytes, fab.total_bytes());
}

TEST(FaultInjection, FabricCountersReconcileUnderDupAndDrop) {
  // The fabric's own ledger must balance when fault injection is on:
  // every frame that entered the wire (originals + injected duplicates)
  // either reached a NIC or died as a counted drop.
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.drop_prob = 0.1;
  cfg.faults.dup_prob = 0.3;
  Fabric fab(eng, 3, cfg);
  std::uint64_t delivered = 0;
  for (int n = 0; n < 3; ++n) {
    fab.nic(n).set_deliver_handler([&](Message&&) { ++delivered; });
  }
  const int kMsgs = 400;
  for (int i = 0; i < kMsgs; ++i) {
    const int src = i % 3;
    fab.nic(src).send(msg(src, (src + 1) % 3, 128 + 64 * (i % 5)));
  }
  eng.run();
  const net::FaultStats& fs = fab.fault_stats();
  ASSERT_GT(fs.dups, 0u);
  ASSERT_GT(fs.drops, 0u);
  EXPECT_EQ(fab.total_messages(),
            static_cast<std::uint64_t>(kMsgs) + fs.dups);
  EXPECT_EQ(fab.total_messages(), delivered + fs.drops);
  // The per-NIC receive ledger agrees with the handler count.
  std::uint64_t nic_received = 0;
  for (int n = 0; n < 3; ++n) {
    nic_received += fab.nic(n).stats().msgs_received;
  }
  EXPECT_EQ(nic_received, delivered);
}

TEST(FaultInjection, PerLinkFifoHoldsUnderDupDropAndJitter) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.drop_prob = 0.15;
  cfg.faults.dup_prob = 0.25;
  cfg.faults.jitter_max = 2000;
  Fabric fab(eng, 2, cfg);
  std::vector<std::uint64_t> seqs;
  fab.nic(1).set_deliver_handler(
      [&](Message&& m) { seqs.push_back(m.hdr.seq); });
  fab.nic(0).set_deliver_handler([](Message&&) {});
  const int kMsgs = 300;
  for (int i = 0; i < kMsgs; ++i) {
    fab.nic(0).send(msg(0, 1, 256, static_cast<std::uint64_t>(i)));
  }
  eng.run();
  const net::FaultStats& fs = fab.fault_stats();
  EXPECT_EQ(seqs.size(),
            static_cast<std::size_t>(kMsgs) - fs.drops + fs.dups);
  // FIFO per link: the sequence is non-decreasing (an injected duplicate
  // trails its original immediately, never jumping ahead of later sends).
  for (std::size_t i = 1; i < seqs.size(); ++i) {
    EXPECT_GE(seqs[i], seqs[i - 1]) << "reordered at index " << i;
  }
}

TEST(FaultInjection, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Engine eng;
    FabricConfig cfg = simple_config();
    cfg.faults.seed = seed;
    cfg.faults.drop_prob = 0.1;
    cfg.faults.dup_prob = 0.1;
    cfg.faults.corrupt_prob = 0.1;
    cfg.faults.jitter_max = 1000;
    cfg.faults.spike_prob = 0.05;
    cfg.faults.spike_max = 10 * des::kMicrosecond;
    Fabric fab(eng, 3, cfg);
    std::vector<std::pair<std::uint64_t, des::Time>> log;
    for (int n = 0; n < 3; ++n) {
      fab.nic(n).set_deliver_handler(
          [&log, &eng](Message&& m) { log.emplace_back(m.hdr.seq, eng.now()); });
    }
    for (int i = 0; i < 120; ++i) {
      const int src = i % 3;
      fab.nic(src).send(
          msg(src, (src + 1) % 3, 128, static_cast<std::uint64_t>(i)));
    }
    eng.run();
    return std::make_tuple(log, fab.fault_stats().drops,
                           fab.fault_stats().dups,
                           fab.fault_stats().corruptions);
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b) << "identical seeds must give identical schedules";
  EXPECT_NE(std::get<0>(a), std::get<0>(c))
      << "different seeds should perturb the schedule";
}

TEST(FaultInjection, CorruptionFlipsExactlyOnePayloadBit) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.corrupt_prob = 1.0;
  Fabric fab(eng, 2, cfg);
  std::vector<std::byte> original(64);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<std::byte>(i * 7 + 1);
  }
  Message m = msg(0, 1, 64);
  m.payload = net::make_payload(original.data(), original.size());
  const net::PayloadPtr sender_copy = m.payload;  // sender keeps a reference
  net::PayloadPtr received;
  fab.nic(1).set_deliver_handler(
      [&](Message&& d) { received = d.payload; });
  fab.nic(0).send(std::move(m));
  eng.run();
  ASSERT_NE(received, nullptr);
  EXPECT_EQ(fab.fault_stats().corruptions, 1u);
  int bits_flipped = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>((*received)[i]) ^
                        static_cast<std::uint8_t>(original[i]);
    while (diff != 0) {
      bits_flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_flipped, 1);
  // The sender's buffer must not be touched (payloads are shared).
  EXPECT_EQ(*sender_copy, original);
}

TEST(FaultInjection, CorruptionOfVirtualPayloadHitsSpareImmediate) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.corrupt_prob = 1.0;
  Fabric fab(eng, 2, cfg);
  Message received;
  fab.nic(1).set_deliver_handler([&](Message&& d) { received = d; });
  Message m = msg(0, 1, 4096, 77);  // virtual payload: wire bytes only
  fab.nic(0).send(std::move(m));
  eng.run();
  // Routing and protocol fields are untouched; only imm[3] differs by one
  // bit, so a checksum detects the damage without breaking dispatch.
  EXPECT_EQ(received.hdr.seq, 77u);
  EXPECT_EQ(__builtin_popcountll(received.hdr.imm[3]), 1);
}

TEST(FaultInjection, BrownoutDropsEverythingInWindow) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.brownout_node = 1;
  cfg.faults.brownout_start = 10 * des::kMicrosecond;
  cfg.faults.brownout_duration = 100 * des::kMicrosecond;
  Fabric fab(eng, 3, cfg);
  int to_1 = 0, to_2 = 0;
  fab.nic(1).set_deliver_handler([&](Message&&) { ++to_1; });
  fab.nic(2).set_deliver_handler([&](Message&&) { ++to_2; });
  // Before the window: delivered.
  fab.nic(0).send(msg(0, 1, 64));
  // Inside the window: node 1 traffic eaten in both directions; node 2
  // unaffected.
  eng.schedule_at(20 * des::kMicrosecond, [&] {
    fab.nic(0).send(msg(0, 1, 64));
    fab.nic(1).send(msg(1, 2, 64));
    fab.nic(0).send(msg(0, 2, 64));
  });
  // After the window: delivered again.
  eng.schedule_at(200 * des::kMicrosecond,
                  [&] { fab.nic(0).send(msg(0, 1, 64)); });
  eng.run();
  EXPECT_EQ(to_1, 2);
  EXPECT_EQ(to_2, 1);
  EXPECT_EQ(fab.fault_stats().brownout_drops, 2u);
  EXPECT_EQ(fab.fault_stats().drops, 2u);  // brownouts count as drops
}

TEST(FaultInjection, StallFreezesEgressWindow) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.stall_node = 0;
  cfg.faults.stall_start = 0;
  cfg.faults.stall_duration = 50 * des::kMicrosecond;
  Fabric fab(eng, 2, cfg);
  des::Time delivered = -1;
  fab.nic(1).set_deliver_handler([&](Message&&) { delivered = eng.now(); });
  // 100000 B = 10 us serialization + 1 us latency, but egress can only
  // start once the stall window ends at 50 us.
  fab.nic(0).send(msg(0, 1, 100000));
  eng.run();
  EXPECT_EQ(delivered, 61 * des::kMicrosecond);
  EXPECT_EQ(fab.fault_stats().stalled_msgs, 1u);
}

TEST(FaultInjection, StallFreezesInFlightEgressMidTransfer) {
  // Regression: a transfer already on the wire when the stall window
  // opens used to keep transmitting straight through it.  100000 B
  // starts at t=0 (10 us serialization); the window [5 us, 55 us)
  // freezes the NIC mid-transfer, inserting the full 50 us: egress ends
  // at 60 us, delivery at 61 us.  Pre-fix delivery was 11 us.
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.stall_node = 0;
  cfg.faults.stall_start = 5 * des::kMicrosecond;
  cfg.faults.stall_duration = 50 * des::kMicrosecond;
  Fabric fab(eng, 2, cfg);
  des::Time delivered = -1;
  fab.nic(1).set_deliver_handler([&](Message&&) { delivered = eng.now(); });
  fab.nic(0).send(msg(0, 1, 100000));
  eng.run();
  EXPECT_EQ(delivered, 61 * des::kMicrosecond);
  EXPECT_EQ(fab.fault_stats().stalled_msgs, 1u);
}

TEST(FaultInjection, StallFreezesIngressToo) {
  // A stalled NIC stops draining its receive port as well: a frame
  // arriving during node 1's stall window [5 us, 55 us) completes
  // reception only after the window ends.  Sent at 10 us (64 B, 100 ns
  // occupancy): nominal arrival 11.1 us, actual completion 55.1 us.
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.stall_node = 1;
  cfg.faults.stall_start = 5 * des::kMicrosecond;
  cfg.faults.stall_duration = 50 * des::kMicrosecond;
  Fabric fab(eng, 2, cfg);
  des::Time delivered = -1;
  fab.nic(1).set_deliver_handler([&](Message&&) { delivered = eng.now(); });
  eng.schedule_at(10 * des::kMicrosecond,
                  [&] { fab.nic(0).send(msg(0, 1, 64)); });
  eng.run();
  EXPECT_EQ(delivered, 55 * des::kMicrosecond + 100);
  EXPECT_EQ(fab.fault_stats().stalled_msgs, 1u);
}

TEST(FaultInjection, BrownoutCatchesMessageQueuedBeforeButSentInWindow) {
  // Regression: brownout used to be judged at queue-entry time, so a
  // message parked behind a long transfer escaped a window it actually
  // transmitted inside.  A (90000 B) occupies egress [0, 9 us) and
  // finishes before the window [10 us, 110 us) — delivered.  B (64000
  // B), queued at t=0 behind A, transmits [9 us, 15.4 us) overlapping
  // the window — eaten.
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.brownout_node = 0;
  cfg.faults.brownout_start = 10 * des::kMicrosecond;
  cfg.faults.brownout_duration = 100 * des::kMicrosecond;
  Fabric fab(eng, 2, cfg);
  int delivered = 0;
  fab.nic(1).set_deliver_handler([&](Message&&) { ++delivered; });
  fab.nic(0).send(msg(0, 1, 90000));
  fab.nic(0).send(msg(0, 1, 64000));
  eng.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(fab.fault_stats().brownout_drops, 1u);
}

TEST(FaultInjection, BrownoutCatchesArrivalInsideWindow) {
  // Destination-side brownout is judged at the modeled arrival time: a
  // 64 B frame sent at 9.5 us arrives at 10.6 us, inside node 1's
  // window [10 us, 110 us) — eaten, even though it was sent before the
  // window opened (the pre-fix escape).
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.brownout_node = 1;
  cfg.faults.brownout_start = 10 * des::kMicrosecond;
  cfg.faults.brownout_duration = 100 * des::kMicrosecond;
  Fabric fab(eng, 2, cfg);
  int delivered = 0;
  fab.nic(1).set_deliver_handler([&](Message&&) { ++delivered; });
  eng.schedule_at(9500, [&] { fab.nic(0).send(msg(0, 1, 64)); });
  eng.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(fab.fault_stats().brownout_drops, 1u);
}

TEST(FaultInjection, BrownoutWindowBoundariesAreHalfOpen) {
  // Pin the boundary semantics: a transmission ending exactly at the
  // window start escapes, and one starting exactly at the window end
  // escapes — [start, end) on the source side, arrival in [start, end)
  // on the destination side.
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.brownout_node = 0;
  cfg.faults.brownout_start = 10 * des::kMicrosecond;
  cfg.faults.brownout_duration = 100 * des::kMicrosecond;
  Fabric fab(eng, 2, cfg);
  int delivered = 0;
  fab.nic(1).set_deliver_handler([&](Message&&) { ++delivered; });
  // 100000 B from t=0: egress exactly [0, 10 us) — last byte leaves as
  // the window opens; half-open means it escapes.
  fab.nic(0).send(msg(0, 1, 100000));
  // Egress starts exactly at the window end: escapes.
  eng.schedule_at(110 * des::kMicrosecond,
                  [&] { fab.nic(0).send(msg(0, 1, 64)); });
  eng.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(fab.fault_stats().brownout_drops, 0u);
}

TEST(FaultInjection, LoopbackIsNeverFaulted) {
  Engine eng;
  FabricConfig cfg = simple_config();
  cfg.faults.drop_prob = 1.0;
  cfg.faults.corrupt_prob = 1.0;
  Fabric fab(eng, 2, cfg);
  int delivered = 0;
  fab.nic(0).set_deliver_handler([&](Message&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) fab.nic(0).send(msg(0, 0, 512));
  eng.run();
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(fab.fault_stats().drops, 0u);
  EXPECT_EQ(fab.fault_stats().corruptions, 0u);
}

}  // namespace
