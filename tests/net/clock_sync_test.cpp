#include "net/clock_sync.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "des/engine.hpp"
#include "net/fabric.hpp"

namespace {

using des::Engine;
using net::ClockSync;
using net::Fabric;
using net::FabricConfig;
using net::GlobalClock;

TEST(ClockSync, NoSkewYieldsZeroOffsets) {
  Engine eng;
  Fabric fab(eng, 4);
  const auto offsets = ClockSync::synchronize(fab);
  ASSERT_EQ(offsets.size(), 4u);
  for (auto o : offsets) EXPECT_EQ(o, 0);
}

class ClockSyncSkew : public ::testing::TestWithParam<int> {};

TEST_P(ClockSyncSkew, RecoversInjectedSkew) {
  Engine eng;
  FabricConfig cfg;
  cfg.clock_skew_max = 50 * des::kMillisecond;
  cfg.clock_seed = static_cast<std::uint64_t>(GetParam());
  Fabric fab(eng, 8, cfg);
  const auto offsets = ClockSync::synchronize(fab, 7);
  for (net::NodeId n = 0; n < 8; ++n) {
    const auto err =
        std::abs(offsets[static_cast<std::size_t>(n)] - fab.true_skew(n) +
                 fab.true_skew(0));
    // Symmetric deterministic links: the estimate should be near-exact
    // (sub-microsecond; slack for integer division in the RTT halving).
    EXPECT_LE(err, 1 * des::kMicrosecond)
        << "node " << n << " offset " << offsets[static_cast<std::size_t>(n)]
        << " true " << fab.true_skew(n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockSyncSkew, ::testing::Values(1, 2, 3, 7));

TEST(ClockSync, GlobalClockMapsLocalTimesConsistently) {
  Engine eng;
  FabricConfig cfg;
  cfg.clock_skew_max = 10 * des::kMillisecond;
  Fabric fab(eng, 4, cfg);
  const GlobalClock clock(ClockSync::synchronize(fab));
  // All nodes reading their local clock "now" should map to nearly the
  // same global instant.
  const auto t0 = clock.to_global(0, fab.local_clock(0));
  for (net::NodeId n = 1; n < 4; ++n) {
    const auto tn = clock.to_global(n, fab.local_clock(n));
    EXPECT_LE(std::abs(tn - t0), 1 * des::kMicrosecond);
  }
}

TEST(ClockSync, IdentityClockIsNoop) {
  const auto clock = GlobalClock::identity(3);
  EXPECT_EQ(clock.to_global(2, 12345), 12345);
}

TEST(ClockSync, RetriesLostProbesAndStillRecoversSkew) {
  Engine eng;
  FabricConfig cfg;
  cfg.clock_skew_max = 20 * des::kMillisecond;
  cfg.faults.drop_prob = 0.3;  // probes and echoes get lost regularly
  Fabric fab(eng, 6, cfg);
  ClockSync::Options opts;
  opts.rounds = 7;
  const auto res = ClockSync::synchronize(fab, opts);
  EXPECT_TRUE(res.synced);
  EXPECT_GT(res.probes_lost, 0u) << "30% drop must cost some probes";
  for (net::NodeId n = 0; n < 6; ++n) {
    const auto err =
        std::abs(res.offsets[static_cast<std::size_t>(n)] -
                 fab.true_skew(n) + fab.true_skew(0));
    EXPECT_LE(err, 1 * des::kMicrosecond) << "node " << n;
  }
}

TEST(ClockSync, ReportsFailureWhenANodeIsUnreachable) {
  Engine eng;
  FabricConfig cfg;
  cfg.faults.brownout_node = 2;
  cfg.faults.brownout_start = 0;
  cfg.faults.brownout_duration = 10 * des::kSecond;  // the whole exchange
  Fabric fab(eng, 4, cfg);
  ClockSync::Options opts;
  opts.rounds = 2;
  opts.max_attempts = 3;
  const auto res = ClockSync::synchronize(fab, opts);
  EXPECT_FALSE(res.synced);
  EXPECT_EQ(res.offsets[2], 0) << "unreachable node keeps the 0 fallback";
  EXPECT_GE(res.probes_lost, 6u);  // rounds * max_attempts for node 2
}

TEST(ClockSync, CrashedNodeMidSyncTimesOutInsteadOfStalling) {
  // Node 2 fail-stops just as the exchange begins: every probe reply from
  // it is eaten by the crash window.  The sync must ride out the loss
  // with per-probe timeouts — terminate, flag the node unsynced, and
  // leave survivors exact — rather than wait forever.
  Engine eng;
  FabricConfig cfg;
  cfg.faults.crashes.push_back(net::CrashEvent{2, 1, 0});
  Fabric fab(eng, 4, cfg);
  ClockSync::Options opts;
  opts.rounds = 2;
  opts.max_attempts = 3;
  const auto res = ClockSync::synchronize(fab, opts);
  EXPECT_FALSE(res.synced);
  EXPECT_GT(res.probes_lost, 0u);  // probes to the corpse really timed out
  ASSERT_EQ(res.offsets.size(), 4u);
  EXPECT_EQ(res.offsets[2], 0) << "crashed node keeps the 0 fallback";
  // The survivors' offsets are unaffected by the corpse (no skew here).
  EXPECT_EQ(res.offsets[1], 0);
  EXPECT_EQ(res.offsets[3], 0);
}

TEST(ClockSync, LeavesNicsQuiescent) {
  Engine eng;
  Fabric fab(eng, 3);
  ClockSync::synchronize(fab);
  // After sync the engine is drained and handlers cleared; installing new
  // handlers and sending must work normally.
  bool got = false;
  fab.nic(1).set_deliver_handler([&](net::Message&&) { got = true; });
  net::Message m;
  m.src = 0;
  m.dst = 1;
  m.wire_bytes = 8;
  fab.nic(0).send(std::move(m));
  eng.run();
  EXPECT_TRUE(got);
}

}  // namespace
